// Command sweepd serves the sweep service: a long-running HTTP server
// that accepts experiment grids (POST /v1/sweep), runs them through the
// shared result cache and single-flight memo, and streams progress and
// bit-identical results back as JSON-lines. See the README's "Sweep
// service" section for the protocol and curl examples.
//
// Observability: GET /metrics is a Prometheus text exposition, GET
// /v1/trace?sweep=ID exports a sweep's span timeline as Chrome
// trace_event JSON, GET /v1/sweeps lists recent sweeps, and every
// request and sweep emits one structured JSON log line on stderr.
// -debug-addr starts an additional net/http/pprof listener for live
// profiling (keep it on localhost or a private interface).
//
// Shutdown: the first SIGINT/SIGTERM drains — new sweeps get 503 (with
// Retry-After), in-flight sweeps run to completion, then the process
// exits 0. A second signal hard-cancels: queued jobs are skipped,
// running simulations finish, streams end with an error event.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taglessdram"
	"taglessdram/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional net/http/pprof listen address (empty = disabled)")
	cacheDir := flag.String("result-cache", "sweepd.cache", "result cache directory (shared, persistent)")
	workers := flag.Int("j", 0, "max concurrent simulations per sweep (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", taglessdram.DefaultMaxJobs, "max jobs per request")
	flag.Parse()

	logger := telemetry.NewLogger(os.Stderr)
	fatal := func(err error) {
		logger.Event("fatal", telemetry.F("error", err.Error()))
		os.Exit(1)
	}

	store, err := taglessdram.OpenResultCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	svc, err := taglessdram.NewSweepServer(store, *workers, *maxJobs)
	if err != nil {
		fatal(err)
	}
	svc.SetLogOutput(os.Stderr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		// pprof gets its own mux on its own listener so profiling is
		// never exposed on the service address by accident.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Event("debug-listener", telemetry.F("addr", *debugAddr))
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Event("debug-listener-error", telemetry.F("error", err.Error()))
			}
		}()
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logger.Event("draining",
			telemetry.F("note", "refusing new sweeps, waiting for in-flight sweeps (signal again to cancel them)"))
		go func() {
			<-sigs
			logger.Event("cancelling", telemetry.F("note", "hard-cancelling in-flight sweeps"))
			svc.Cancel()
		}()
		svc.Drain()
		if err := srv.Shutdown(context.Background()); err != nil {
			logger.Event("shutdown-error", telemetry.F("error", err.Error()))
		}
	}()

	logger.Event("serving",
		telemetry.F("addr", fmt.Sprintf("http://%s", *addr)),
		telemetry.F("result_cache", *cacheDir),
		telemetry.F("entries", store.Len()),
		telemetry.F("model_version", taglessdram.ModelVersion()),
		telemetry.F("workers", *workers),
		telemetry.F("max_jobs", *maxJobs),
	)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Event("drained")
}
