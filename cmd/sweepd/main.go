// Command sweepd serves the sweep service: a long-running HTTP server
// that accepts experiment grids (POST /v1/sweep), runs them through the
// shared result cache and single-flight memo, and streams progress and
// bit-identical results back as JSON-lines. See the README's "Sweep
// service" section for the protocol and curl examples.
//
// Shutdown: the first SIGINT/SIGTERM drains — new sweeps get 503,
// in-flight sweeps run to completion, then the process exits 0. A second
// signal hard-cancels: queued jobs are skipped, running simulations
// finish, streams end with an error event.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taglessdram"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "listen address")
	cacheDir := flag.String("result-cache", "sweepd.cache", "result cache directory (shared, persistent)")
	workers := flag.Int("j", 0, "max concurrent simulations per sweep (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", taglessdram.DefaultMaxJobs, "max jobs per request")
	flag.Parse()

	log.SetPrefix("sweepd: ")
	log.SetFlags(log.LstdFlags)

	store, err := taglessdram.OpenResultCache(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := taglessdram.NewSweepServer(store, *workers, *maxJobs)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Print("draining: refusing new sweeps, waiting for in-flight sweeps (signal again to cancel them)")
		go func() {
			<-sigs
			log.Print("cancelling in-flight sweeps")
			svc.Cancel()
		}()
		svc.Drain()
		if err := srv.Shutdown(context.Background()); err != nil {
			log.Print("shutdown: ", err)
		}
	}()

	log.Printf("serving on http://%s (result cache %s, entries=%d)", *addr, *cacheDir, store.Len())
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	log.Print("drained, exiting")
}
