// Command sweeptop is a live terminal watcher for a sweepd sweep
// service (cmd/sweepd): it polls GET /metrics and GET /v1/stats on an
// interval and renders sweep/job throughput, cache hit rate and
// per-phase latency — with sparkline history — plus the server's recent
// sweeps from GET /v1/sweeps. Think `top`, but for a simulation
// backend.
//
//	sweeptop -server http://localhost:8344
//	sweeptop -server http://localhost:8344 -interval 5s -n 3 -plain
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"taglessdram"
	"taglessdram/internal/sweepapi"
	"taglessdram/internal/telemetry"
	"taglessdram/internal/textplot"
)

// historyLen bounds the sparkline history (one point per poll).
const historyLen = 60

const metricPrefix = "sweepd_"

// snapshot is one poll of the server's telemetry surface.
type snapshot struct {
	at      time.Time
	stats   taglessdram.ServerStats
	samples []telemetry.Sample
	sweeps  []sweepapi.SweepSummary
}

func main() {
	server := flag.String("server", "http://localhost:8344", "sweepd base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	n := flag.Int("n", 0, "number of polls before exiting (0 = until interrupted)")
	plain := flag.Bool("plain", false, "append frames instead of redrawing in place (for logs/pipes)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var jobRate, hitRate []float64
	var prev *snapshot
	for i := 0; *n == 0 || i < *n; i++ {
		snap, err := poll(ctx, *server)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintln(os.Stderr, "sweeptop:", err)
			os.Exit(1)
		}
		jobRate = push(jobRate, jobsPerSec(prev, snap))
		hitRate = push(hitRate, hitPct(prev, snap))
		frame := render(*server, snap, jobRate, hitRate)
		if !*plain {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		fmt.Print(frame)
		prev = snap
		if *n != 0 && i == *n-1 {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(*interval):
		}
	}
}

func push(hist []float64, v float64) []float64 {
	hist = append(hist, v)
	if len(hist) > historyLen {
		hist = hist[len(hist)-historyLen:]
	}
	return hist
}

// poll scrapes /metrics, /v1/stats and /v1/sweeps.
func poll(ctx context.Context, server string) (*snapshot, error) {
	snap := &snapshot{at: time.Now()}
	var err error
	if snap.stats, err = taglessdram.RemoteStats(ctx, server); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(server, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d from /metrics", resp.StatusCode)
	}
	if snap.samples, err = telemetry.ParseProm(resp.Body); err != nil {
		return nil, err
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(server, "/")+"/v1/sweeps", nil)
	if err != nil {
		return nil, err
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp2.Body.Close()
	var sr sweepapi.SweepsReply
	if err := json.NewDecoder(resp2.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("decoding /v1/sweeps: %w", err)
	}
	snap.sweeps = sr.Sweeps
	return snap, nil
}

// jobsPerSec is the completed-job rate between two polls, from the
// phase histogram counts (simulate + cached answers both count).
func jobsPerSec(prev, cur *snapshot) float64 {
	if prev == nil {
		return 0
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return 0
	}
	dj := float64(cur.stats.Hits+cur.stats.Misses) - float64(prev.stats.Hits+prev.stats.Misses)
	if dj < 0 {
		dj = 0
	}
	return dj / dt
}

// hitPct is the cache hit percentage over the delta between two polls
// (lifetime percentage for the first).
func hitPct(prev, cur *snapshot) float64 {
	h, m := float64(cur.stats.Hits), float64(cur.stats.Misses)
	if prev != nil {
		h -= float64(prev.stats.Hits)
		m -= float64(prev.stats.Misses)
	}
	if h+m <= 0 {
		return math.NaN()
	}
	return 100 * h / (h + m)
}

// phaseQuantiles extracts a phase's p50/p99 (in seconds) from the
// scraped cumulative histogram buckets.
func phaseQuantiles(samples []telemetry.Sample, phase string) (p50, p99 float64, count uint64, ok bool) {
	var bounds []float64
	var cum []uint64
	for _, s := range samples {
		switch s.Name {
		case metricPrefix + "phase_duration_seconds_bucket":
			if s.Label("phase") != phase {
				continue
			}
			le := s.Label("le")
			b := math.Inf(+1)
			if le != "+Inf" {
				fmt.Sscanf(le, "%g", &b)
			}
			bounds = append(bounds, b)
			cum = append(cum, uint64(s.Value))
		case metricPrefix + "phase_duration_seconds_count":
			if s.Label("phase") == phase {
				count = uint64(s.Value)
			}
		}
	}
	if len(bounds) == 0 || count == 0 {
		return 0, 0, count, false
	}
	return telemetry.Quantile(bounds, cum, 50), telemetry.Quantile(bounds, cum, 99), count, true
}

func render(server string, snap *snapshot, jobRate, hitRate []float64) string {
	var b strings.Builder
	st := snap.stats
	fmt.Fprintf(&b, "sweeptop — %s   model %d   up %s   cache entries %d\n",
		server, st.ModelVersion, st.Uptime.Round(time.Second), st.Entries)
	fmt.Fprintf(&b, "sweeps: %d total, %d in flight    jobs: %d total, %d in flight\n",
		st.Sweeps, st.InFlightSweeps, st.Jobs, st.InFlightJobs)
	total := st.Hits + st.Misses
	pct := math.NaN()
	if total > 0 {
		pct = 100 * float64(st.Hits) / float64(total)
	}
	fmt.Fprintf(&b, "cache:  hits %d (%s lifetime)  misses %d  stored %d  evicted %d\n\n",
		st.Hits, fmtPct(pct), st.Misses, st.Stored, st.Evicted)

	fmt.Fprintf(&b, "jobs/s    %8.2f  %s\n", last(jobRate), textplot.Sparkline(jobRate, historyLen))
	fmt.Fprintf(&b, "hit rate  %8s  %s\n\n", fmtPct(last(hitRate)), textplot.Sparkline(nanToZero(hitRate), historyLen))

	fmt.Fprintf(&b, "phase latency (lifetime)   p50        p99        count\n")
	for _, phase := range []string{"validate", "cache-lookup", "simulate", "encode", "stream"} {
		p50, p99, count, ok := phaseQuantiles(snap.samples, phase)
		if !ok {
			fmt.Fprintf(&b, "  %-24s %-10s %-10s %d\n", phase, "-", "-", count)
			continue
		}
		fmt.Fprintf(&b, "  %-24s %-10s %-10s %d\n", phase,
			fmtDur(p50), fmtDur(p99), count)
	}
	if len(snap.sweeps) > 0 {
		fmt.Fprintf(&b, "\nrecent sweeps\n")
		max := len(snap.sweeps)
		if max > 8 {
			max = 8
		}
		for _, sw := range snap.sweeps[:max] {
			fmt.Fprintf(&b, "  %-10s %-9s %4d jobs  %4d cached / %-4d simulated  %8s  %s\n",
				sw.ID, sw.State, sw.Jobs, sw.Cached, sw.Simulated,
				(time.Duration(sw.DurationMS) * time.Millisecond).Round(time.Millisecond), sw.Peer)
		}
	}
	return b.String()
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return xs[len(xs)-1]
}

func nanToZero(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		if !math.IsNaN(v) {
			out[i] = v
		}
	}
	return out
}

func fmtPct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", v)
}

func fmtDur(seconds float64) string {
	if math.IsNaN(seconds) {
		return "-"
	}
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond).String()
}
