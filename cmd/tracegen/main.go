// Command tracegen records synthetic workload traces to files and inspects
// them. Recorded traces replay bit-identically through the simulator
// (Workload.Sources), decoupling workload generation from simulation.
//
//	tracegen -workload sphinx3 -n 1000000 -out sphinx3.trace
//	tracegen -stats sphinx3.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"taglessdram/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "sphinx3", "SPEC or PARSEC profile to record")
		n        = flag.Uint64("n", 1_000_000, "number of accesses to record")
		out      = flag.String("out", "", "output trace file")
		seed     = flag.Uint64("seed", 1, "trace seed")
		shift    = flag.Uint("shift", 6, "footprint scale: divide by 1<<shift")
		statsArg = flag.String("stats", "", "print statistics of an existing trace file and exit")
	)
	flag.Parse()

	if *statsArg != "" {
		if err := printStats(*statsArg); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("need -out (or -stats to inspect a file)"))
	}

	p, err := trace.ProfileByName(*workload)
	if err != nil {
		fatal(err)
	}
	g := trace.NewGenerator(p.Scaled(*shift), *seed)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Record(f, g, *n); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	info, _ := os.Stat(*out)
	fmt.Printf("recorded %d accesses of %s (seed %d) to %s (%d bytes, %.2f B/access)\n",
		*n, *workload, *seed, *out, info.Size(), float64(info.Size())/float64(*n))
}

func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	accesses, err := trace.ReadAll(f)
	if err != nil {
		return err
	}
	rep, err := trace.NewReplay(accesses)
	if err != nil {
		return err
	}
	fmt.Print(trace.Analyze(rep, uint64(len(accesses))).String())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
